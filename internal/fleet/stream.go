package fleet

// This file is the streaming fleet core. Scenarios come from a lazy
// Source (so a million-device fleet is never materialized), workers
// claim deterministic contiguous chunks of devices, per-chunk
// aggregator shards accumulate the report in constant memory, and an
// optional Sink receives every row in scenario order through a
// bounded reorder window. A committer folds finished chunks back
// into global order, and its contiguous commit frontier — together
// with the aggregator snapshot and the sink's delivered-row index —
// is what StreamOptions.Checkpoint persists and StreamOptions.Resume
// restarts from. StreamOptions.Partition restricts a run to one
// device range of the fleet (global indices preserved), which is the
// multi-process sharding substrate (see checkpoint.go and merge.go).
// fleet.Run is a thin wrapper that attaches a collecting sink.

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"ehdl/internal/fleet/memo"
)

// Source lazily yields the fleet's scenarios. Len is the fleet size;
// At(i) builds scenario i and must be safe for concurrent calls with
// distinct (or equal) indices.
type Source interface {
	Len() int
	At(i int) (Scenario, error)
}

type sliceSource []Scenario

func (s sliceSource) Len() int                   { return len(s) }
func (s sliceSource) At(i int) (Scenario, error) { return s[i], nil }

// SliceSource adapts a materialized scenario slice.
func SliceSource(scenarios []Scenario) Source { return sliceSource(scenarios) }

type funcSource struct {
	n  int
	fn func(i int) (Scenario, error)
}

func (s funcSource) Len() int                   { return s.n }
func (s funcSource) At(i int) (Scenario, error) { return s.fn(i) }

// FuncSource adapts a generator function: n devices, scenario i built
// on demand by fn (which must be safe for concurrent calls).
func FuncSource(n int, fn func(i int) (Scenario, error)) Source {
	return funcSource{n: n, fn: fn}
}

// Sink consumes per-device rows as the fleet streams. Consume is
// called exactly once per scenario, in scenario order (i strictly
// increasing), never concurrently. A Consume error aborts the run.
type Sink interface {
	Consume(i int, r Result) error
}

// Flusher is the optional Sink upgrade checkpointing relies on: a
// sink that can force delivered rows to stable storage. When the
// run's Sink implements it, RunStream calls Flush immediately before
// every checkpoint write, so the persisted row frontier is always
// covered by durable sink output. Checkpoint writes happen on an
// async writer, so Flush may run concurrently with Consume —
// implementations must serialize internally (NDJSONFile does; its
// fsync deliberately runs outside the lock so delivery never stalls
// behind the disk).
type Flusher interface {
	Flush() error
}

// SinkFunc adapts a function to the Sink interface.
type SinkFunc func(i int, r Result) error

// Consume implements Sink.
func (f SinkFunc) Consume(i int, r Result) error { return f(i, r) }

// MultiSink fans rows out to several sinks in argument order. Its
// Flush flushes every constituent that implements Flusher, so
// checkpoint durability propagates through the fan-out.
func MultiSink(sinks ...Sink) Sink { return multiSink(sinks) }

type multiSink []Sink

// Consume implements Sink.
func (m multiSink) Consume(i int, r Result) error {
	for _, s := range m {
		if err := s.Consume(i, r); err != nil {
			return err
		}
	}
	return nil
}

// Flush implements Flusher.
func (m multiSink) Flush() error {
	for _, s := range m {
		if f, ok := s.(Flusher); ok {
			if err := f.Flush(); err != nil {
				return err
			}
		}
	}
	return nil
}

// Collector is a Sink that materializes rows — what fleet.Run uses to
// keep its Report.Results contract. Only attach it to fleets you are
// willing to hold in memory. It enforces the Sink ordering contract:
// a row that is not exactly the next expected index is an error.
type Collector struct {
	// Start is the first expected row index: 0 for whole-fleet runs,
	// the partition's start for sharded ones.
	Start int
	Rows  []Result
}

// Consume implements Sink.
func (c *Collector) Consume(i int, r Result) error {
	if want := c.Start + len(c.Rows); i != want {
		return fmt.Errorf("fleet: collector got row %d, want %d", i, want)
	}
	c.Rows = append(c.Rows, r)
	return nil
}

// DefaultChunkSize is RunStream's dispatch granularity: workers claim
// this many consecutive devices at a time. Large enough to amortize
// the per-chunk aggregator shard, small enough that the commit
// frontier — and with it checkpoint coverage — advances promptly.
// Small fleets clamp it further so work still spreads across the
// pool.
const DefaultChunkSize = 256

// StreamOptions configures RunStream.
type StreamOptions struct {
	// Workers bounds the worker pool (<= 0: GOMAXPROCS).
	Workers int
	// ExactPercentiles is the fleet size up to which wall-time
	// percentiles are exact (<= 0: DefaultExactPercentiles). Larger
	// fleets switch to the histogram estimate.
	ExactPercentiles int
	// Sink, when set, receives every row in scenario order.
	Sink Sink
	// Progress, when set, is called from a ticker goroutine with the
	// number of finished devices (and once more on completion). Totals
	// are partition-relative: a resumed or sharded run reports
	// (committed-so-far, partition size), counting checkpoint-restored
	// rows as already done.
	Progress func(done, total int)
	// ProgressEvery is the ticker interval (<= 0: 2s).
	ProgressEvery time.Duration
	// Memo, when set, dedups identical device runs: workers consult
	// the content-addressed memo before simulating and replay cached
	// outcomes (see internal/fleet/memo). Rows and report are
	// bit-identical with or without it; its counters land in
	// Report.Memo. The same memo may be shared across RunStream calls
	// to carry warm state between sweeps.
	Memo *memo.Memo
	// Partition restricts the run to one contiguous device range of
	// the fleet (zero value: the whole fleet). Global indices are
	// preserved — the sink sees exactly the (i, row) pairs a
	// whole-fleet run would produce for the range — so k shards'
	// outputs concatenate and merge bit-identically (see MergeShards).
	Partition Partition
	// Checkpoint, when set, persists the commit frontier (aggregator
	// snapshot + delivered-row index) to Checkpoint.Path atomically
	// every Checkpoint.Every rows and once more, synchronously, on
	// completion. Periodic writes happen on an async writer that
	// overlaps disk latency with simulation (newest frontier wins if
	// writes fall behind), and if the Sink implements Flusher it is
	// flushed before every write — so a SIGKILL at any point leaves a
	// checkpoint whose frontier is covered by the sink's durable
	// output.
	Checkpoint *CheckpointSpec
	// Resume, when set, seeds the run from a loaded checkpoint:
	// simulation continues at its row frontier with its restored
	// aggregator state. The state must match this run — fleet size,
	// partition, exact-percentile threshold, and (when Checkpoint is
	// set) its fingerprint — or the run fails with
	// ErrCheckpointMismatch. The Sink must already be positioned at
	// the frontier (see ResumeNDJSONFile).
	Resume *CheckpointState
	// ChunkSize overrides DefaultChunkSize (<= 0: default).
	ChunkSize int
	// Context, when set, cancels an in-flight run: workers stop at the
	// next device boundary, no further chunks commit, and RunStream
	// returns an error wrapping ctx.Err(). A cancelled checkpointed run
	// still writes one final checkpoint at its commit frontier — the
	// consistent (aggregator, delivered rows) prefix — so cancellation
	// (the fleet service's job abort and graceful drain) is resumable
	// exactly like a crash, minus the lost tail. nil: never cancelled.
	Context context.Context
	// Pool, when set, draws simulation slots from a WorkerPool shared
	// with other concurrent RunStream calls instead of giving this run
	// Workers unconditional goroutines: each worker holds a slot only
	// while simulating a chunk, so the pool bounds total simulation
	// concurrency across every run sharing it. Workers still bounds
	// this run's goroutine count (its maximum share of the pool).
	Pool *WorkerPool
	// Clock supplies the host time used for Report.HostSeconds and
	// progress pacing — nothing simulated reads it (nil: SystemClock).
	Clock Clock
}

// reorder is the bounded window that restores scenario order for sink
// delivery. A worker whose finished row is too far ahead of the
// oldest undelivered index blocks until the window advances, so
// pending never holds more than window rows — the window is what
// keeps a fleet with one pathologically slow device from buffering
// the entire rest of the fleet behind it.
type reorder struct {
	mu      sync.Mutex
	cond    *sync.Cond
	next    int
	window  int
	pending map[int]Result
	sink    Sink
	err     error
}

func newReorder(sink Sink, workers, next0 int) *reorder {
	// A few rows of slack per worker hides delivery jitter without
	// growing the O(workers) memory bound.
	w := &reorder{
		next:    next0,
		window:  4 * workers,
		pending: make(map[int]Result, 4*workers+1),
		sink:    sink,
	}
	w.cond = sync.NewCond(&w.mu)
	return w
}

// deliver hands row i to the window and flushes every row that became
// in-order, blocking while i is beyond the window. It reports whether
// the run should continue. The worker holding the oldest index never
// blocks (i == next is always inside the window), so the window
// always drains.
func (w *reorder) deliver(i int, r Result) bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	for w.err == nil && i >= w.next+w.window {
		w.cond.Wait()
	}
	if w.err != nil {
		return false
	}
	w.pending[i] = r
	advanced := false
	for {
		row, ok := w.pending[w.next]
		if !ok {
			break
		}
		delete(w.pending, w.next)
		if err := w.sink.Consume(w.next, row); err != nil {
			w.err = fmt.Errorf("fleet: sink at row %d: %w", w.next, err)
			w.cond.Broadcast()
			return false
		}
		w.next++
		advanced = true
	}
	if advanced {
		w.cond.Broadcast()
	}
	return true
}

// cancel fails the window (first error wins) and wakes every worker
// blocked in deliver, so a cancelled run's workers stop instead of
// waiting for a window advance that will never come.
func (w *reorder) cancel(err error) {
	w.mu.Lock()
	if w.err == nil {
		w.err = err
	}
	w.cond.Broadcast()
	w.mu.Unlock()
}

// chunkDone is a worker's completion record for one contiguous chunk:
// its half-open device range and the aggregator shard over exactly
// those rows. A worker sends it only after every row of the chunk has
// been handed to the ordered sink.
type chunkDone struct {
	start, end int
	agg        *Agg
}

// ckptJob is one queued checkpoint write: a commit frontier and the
// aggregator snapshot taken at exactly that frontier.
type ckptJob struct {
	rows int
	snap []byte
}

// ckptWriter persists periodic checkpoints off the committer's
// critical path: the sink flush + fsync + atomic artifact write cost
// milliseconds of disk latency that would otherwise stall every
// chunk commit at the interval boundary. The committer snapshots the
// aggregator synchronously (the snapshot must capture the frontier
// state) and enqueues the write; at most one job is pending, and a
// newer frontier replaces an unstarted older one — every write is a
// full rewrite, so only the latest matters. RunStream drains the
// writer before returning and writes the final checkpoint
// synchronously, so a finished run's file always sits at the final
// frontier, and an interrupted run's file is deterministically at the
// last queued frontier.
type ckptWriter struct {
	ch    chan ckptJob
	done  chan struct{}
	mu    sync.Mutex
	last  int // frontier of the most recent successful write
	wrote bool
	err   error
}

func newCkptWriter() *ckptWriter {
	return &ckptWriter{ch: make(chan ckptJob, 1), done: make(chan struct{})}
}

func (w *ckptWriter) error() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.err
}

// drain closes the queue and waits for pending writes to land. Safe
// to read the fields directly afterwards: the writer goroutine has
// exited (happens-before via done).
func (w *ckptWriter) drain() (last int, wrote bool, err error) {
	close(w.ch)
	<-w.done
	return w.last, w.wrote, w.err
}

// committer folds finished chunks back into contiguous device order.
// Chunks complete out of order; the committer parks early arrivals
// and advances its frontier only through gap-free prefixes. Because
// (a) workers deliver every row of a chunk before reporting it done
// and (b) the reorder mutex serializes delivery, a frontier of R
// means the sink has consumed exactly rows [Start, R) and the
// committed aggregator holds exactly that multiset — the invariant
// that makes each CheckpointState consistent and resume exact.
type committer struct {
	spec       *CheckpointSpec
	state      CheckpointState // identity template; Rows/AggSnap filled per write
	committed  *Agg
	rows       int               // commit frontier: rows [state.Start, rows) are committed
	lastQueued int               // frontier of the most recently queued checkpoint
	pending    map[int]chunkDone // parked chunks, keyed by start index
	flusher    Flusher
	writer     *ckptWriter // nil unless spec is set and work remains
	fail       func()      // aborts dispatch after a checkpoint failure
	err        error
}

// run drains the commits channel until it closes. After a checkpoint
// failure it keeps draining (workers must never block on a full
// channel) but stops committing.
func (c *committer) run(commits <-chan chunkDone) {
	for cd := range commits {
		if c.err != nil {
			continue
		}
		c.pending[cd.start] = cd
		for {
			nxt, ok := c.pending[c.rows]
			if !ok {
				break
			}
			delete(c.pending, c.rows)
			c.committed.Merge(nxt.agg)
			c.rows = nxt.end
		}
		if c.spec != nil && c.rows-c.lastQueued >= c.spec.every() {
			if err := c.queueCheckpoint(); err != nil {
				c.err = err
				if c.fail != nil {
					c.fail()
				}
			}
		}
	}
}

// queueCheckpoint snapshots the committed aggregator at the current
// frontier and hands the write to the async writer, replacing an
// unstarted older job (single producer, so the replace never races
// another enqueue).
func (c *committer) queueCheckpoint() error {
	snap, err := c.committed.Snapshot()
	if err != nil {
		return err
	}
	job := ckptJob{rows: c.rows, snap: snap}
	select {
	case c.writer.ch <- job:
	default:
		select {
		case <-c.writer.ch:
		default:
		}
		c.writer.ch <- job
	}
	c.lastQueued = c.rows
	return nil
}

// writeLoop is the async writer goroutine: flush the sink, then land
// the checkpoint atomically. After a failure it keeps draining the
// queue (the committer must never block on a full one) but stops
// writing.
func (c *committer) writeLoop() {
	defer close(c.writer.done)
	for job := range c.writer.ch {
		if c.writer.error() != nil {
			continue
		}
		err := c.flushSink()
		if err == nil {
			st := c.state
			st.Rows = job.rows
			st.AggSnap = job.snap
			if werr := st.write(c.spec.Path); werr != nil {
				err = fmt.Errorf("fleet: write checkpoint %s: %w", c.spec.Path, werr)
			}
		}
		c.writer.mu.Lock()
		if err != nil {
			c.writer.err = err
		} else {
			c.writer.last, c.writer.wrote = job.rows, true
		}
		c.writer.mu.Unlock()
		if err != nil && c.fail != nil {
			c.fail()
		}
	}
}

// flushSink forces delivered rows to stable storage ahead of a
// checkpoint write. By the time a checkpoint at frontier R is queued,
// rows [Start, R) have all been handed to the sink, so a flush at any
// later moment covers them; rows past the frontier flushed along the
// way are harmless (resume truncates the sink back to the
// checkpointed boundary). Flush may run concurrently with delivery —
// see the Flusher contract.
func (c *committer) flushSink() error {
	if c.flusher == nil {
		return nil
	}
	if err := c.flusher.Flush(); err != nil {
		return fmt.Errorf("fleet: flush sink before checkpoint: %w", err)
	}
	return nil
}

// writeCheckpoint snapshots the committed aggregator and atomically
// rewrites the checkpoint file at the current frontier.
func (c *committer) writeCheckpoint() error {
	snap, err := c.committed.Snapshot()
	if err != nil {
		return err
	}
	st := c.state
	st.Rows = c.rows
	st.AggSnap = snap
	if err := st.write(c.spec.Path); err != nil {
		return fmt.Errorf("fleet: write checkpoint %s: %w", c.spec.Path, err)
	}
	return nil
}

// RunStream simulates the fleet without materializing it: scenarios
// are generated on demand, rows stream through the optional sink in
// scenario order, and the report is aggregated online — memory is
// O(workers × exact-percentile threshold) worst case, independent of
// fleet size. Scenario-level failures (bad profile, missing model,
// DNF, a Source error for one index) land in that row's Err and do
// not abort the fleet; only a Sink or checkpoint error aborts,
// returning that error (the sink's takes precedence).
//
// The report is bit-identical for any worker count and chunk size,
// and — for fleets within the exact-percentile threshold —
// bit-identical to fleet.Run over the same scenarios. A partitioned
// run reports over its device range only; a resumed run's report
// covers restored and newly simulated rows alike, bit-identical to
// the uninterrupted run's.
func RunStream(src Source, opts StreamOptions) (Report, error) {
	clock := orClock(opts.Clock)
	ctx := opts.Context
	if ctx == nil {
		ctx = context.Background()
	}
	start := clock.Now()
	n := src.Len()
	part := opts.Partition.norm()
	if err := part.validate(); err != nil {
		return Report{}, err
	}
	pstart, pend := part.Range(n)
	threshold := opts.ExactPercentiles
	if threshold <= 0 {
		threshold = DefaultExactPercentiles
	}

	base := pstart
	committed := NewAgg(threshold)
	if st := opts.Resume; st != nil {
		fp := st.Fingerprint
		if opts.Checkpoint != nil {
			fp = opts.Checkpoint.Fingerprint
		}
		if err := st.compatible(fp, n, part, threshold); err != nil {
			return Report{}, err
		}
		restored, err := RestoreAgg(st.AggSnap)
		if err != nil {
			return Report{}, err
		}
		committed = restored
		base = st.Rows
	}
	span := pend - base

	var done atomic.Int64
	stopProgress := startProgress(&done, base-pstart, pend-pstart, opts)

	flusher, _ := opts.Sink.(Flusher)
	cm := &committer{
		spec:       opts.Checkpoint,
		committed:  committed,
		rows:       base,
		lastQueued: base,
		pending:    make(map[int]chunkDone),
		flusher:    flusher,
	}
	cm.state = CheckpointState{
		Version:   checkpointVersion,
		Devices:   n,
		Part:      part,
		Start:     pstart,
		End:       pend,
		Threshold: threshold,
	}
	if opts.Checkpoint != nil {
		cm.state.Fingerprint = opts.Checkpoint.Fingerprint
	}

	var win *reorder
	if span > 0 {
		workers := opts.Workers
		if workers <= 0 {
			workers = runtime.GOMAXPROCS(0)
		}
		if workers > span {
			workers = span
		}
		chunk := opts.ChunkSize
		if chunk <= 0 {
			chunk = DefaultChunkSize
		}
		if per := (span + 4*workers - 1) / (4 * workers); per < chunk {
			chunk = per
		}
		if chunk < 1 {
			chunk = 1
		}

		if opts.Sink != nil {
			win = newReorder(opts.Sink, workers, base)
		}

		commits := make(chan chunkDone, workers)
		abort := make(chan struct{})
		var abortOnce sync.Once
		fail := func() { abortOnce.Do(func() { close(abort) }) }
		cm.fail = fail

		if ctx.Done() != nil {
			// Watcher: a cancelled context stops dispatch (via abort) and
			// wakes workers blocked in the reorder window, which would
			// otherwise wait forever for rows that no one will simulate.
			watchStop := make(chan struct{})
			defer close(watchStop)
			go func() {
				select {
				case <-ctx.Done():
					if win != nil {
						win.cancel(fmt.Errorf("fleet: run cancelled: %w", ctx.Err()))
					}
					fail()
				case <-watchStop:
				}
			}()
		}

		if cm.spec != nil {
			cm.writer = newCkptWriter()
			go cm.writeLoop()
		}

		var cwg sync.WaitGroup
		cwg.Add(1)
		go func() {
			defer cwg.Done()
			cm.run(commits)
		}()

		jobs := make(chan int)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for cs := range jobs {
					ce := cs + chunk
					if ce > pend {
						ce = pend
					}
					// A shared pool slot covers simulation only; delivery
					// below runs slot-free because the reorder window can
					// block behind rows another run's slot-less worker owes
					// (see WorkerPool).
					if opts.Pool != nil && !opts.Pool.acquire(ctx, abort) {
						fail()
						return
					}
					shard := NewAgg(threshold)
					var rows []Result
					if win != nil {
						rows = make([]Result, 0, ce-cs)
					}
					cancelled := false
					for i := cs; i < ce; i++ {
						if ctx.Err() != nil {
							cancelled = true
							break
						}
						s, err := src.At(i)
						var r Result
						if err != nil {
							// The scenario never existed, so label its breakdown
							// groups explicitly instead of leaving them blank.
							r = Result{
								Name:      fmt.Sprintf("dev%d", i),
								Engine:    "unknown",
								Profile:   "unknown",
								Predicted: -1,
								Diagnosis: SetupErrorDiagnosis,
								Err:       fmt.Errorf("fleet: scenario %d: %w", i, err),
							}
						} else if opts.Memo != nil {
							r = runMemoized(s, opts.Memo)
						} else {
							r = runOne(s)
						}
						shard.Observe(r)
						done.Add(1)
						if win != nil {
							rows = append(rows, r)
						}
					}
					if opts.Pool != nil {
						opts.Pool.Release()
					}
					if cancelled {
						// The chunk is partial: neither deliver nor commit
						// it, so the frontier never covers a half-simulated
						// chunk.
						fail()
						return
					}
					for k, r := range rows {
						if !win.deliver(cs+k, r) {
							fail()
							return
						}
					}
					commits <- chunkDone{start: cs, end: ce, agg: shard}
				}
			}()
		}
	dispatch:
		for cs := base; cs < pend; cs += chunk {
			select {
			case jobs <- cs:
			case <-abort:
				break dispatch
			}
		}
		close(jobs)
		wg.Wait()
		close(commits)
		cwg.Wait()
	}
	stopProgress()

	var ckLast int
	var ckWrote bool
	var ckErr error
	if cm.writer != nil {
		ckLast, ckWrote, ckErr = cm.writer.drain()
	}

	var winErr error
	if win != nil {
		win.mu.Lock()
		winErr = win.err
		win.mu.Unlock()
	}
	if cerr := ctx.Err(); cerr != nil {
		// A sink failure unrelated to the cancellation still wins: the
		// run was already broken before it was cancelled.
		if winErr != nil && !errors.Is(winErr, cerr) {
			return Report{}, winErr
		}
		if cm.err != nil {
			return Report{}, cm.err
		}
		if ckErr != nil {
			return Report{}, ckErr
		}
		if opts.Checkpoint != nil {
			// Land one final checkpoint at the commit frontier: rows
			// [Start, frontier) are aggregated, delivered and about to be
			// flushed, so a cancelled run resumes exactly like a crashed
			// one — anything the sink holds past the frontier is
			// truncated back on resume.
			if err := cm.flushSink(); err != nil {
				return Report{}, err
			}
			if err := cm.writeCheckpoint(); err != nil {
				return Report{}, err
			}
		}
		return Report{}, fmt.Errorf("fleet: run cancelled: %w", cerr)
	}
	if winErr != nil {
		return Report{}, winErr
	}
	if cm.err != nil {
		return Report{}, cm.err
	}
	if ckErr != nil {
		return Report{}, ckErr
	}

	if opts.Checkpoint != nil && !(ckWrote && ckLast == cm.rows) {
		// Final checkpoint, written synchronously: frontier ==
		// partition end, so the file doubles as the shard artifact's
		// meta and a resume of a completed run is a no-op reproducing
		// identical output. (Skipped when the writer's last landed
		// write is already at the final frontier.)
		if err := cm.flushSink(); err != nil {
			return Report{}, err
		}
		if err := cm.writeCheckpoint(); err != nil {
			return Report{}, err
		}
	}

	rep := committed.Report()
	if opts.Memo != nil {
		st := opts.Memo.Stats()
		rep.Memo = &st
	}
	rep.HostSeconds = clock.Now().Sub(start).Seconds()
	if opts.Progress != nil {
		opts.Progress(base-pstart+int(done.Load()), pend-pstart)
	}
	return rep, nil
}

// startProgress runs the optional progress ticker; the returned stop
// function is idempotent-enough for the single call RunStream makes.
// offset counts rows already committed before this run (a resumed
// checkpoint's frontier, partition-relative).
func startProgress(done *atomic.Int64, offset, total int, opts StreamOptions) func() {
	if opts.Progress == nil {
		return func() {}
	}
	every := opts.ProgressEvery
	if every <= 0 {
		every = 2 * time.Second
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		t := time.NewTicker(every)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				opts.Progress(offset+int(done.Load()), total)
			case <-stop:
				return
			}
		}
	}()
	return func() {
		close(stop)
		wg.Wait()
	}
}
