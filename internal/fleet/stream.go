package fleet

// This file is the streaming fleet core. Scenarios come from a lazy
// Source (so a million-device fleet is never materialized), workers
// simulate them concurrently, per-worker aggregator shards accumulate
// the report in constant memory, and an optional Sink receives every
// row in scenario order through a bounded reorder window. fleet.Run
// is a thin wrapper that attaches a collecting sink.

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"ehdl/internal/fleet/memo"
)

// Source lazily yields the fleet's scenarios. Len is the fleet size;
// At(i) builds scenario i and must be safe for concurrent calls with
// distinct (or equal) indices.
type Source interface {
	Len() int
	At(i int) (Scenario, error)
}

type sliceSource []Scenario

func (s sliceSource) Len() int                   { return len(s) }
func (s sliceSource) At(i int) (Scenario, error) { return s[i], nil }

// SliceSource adapts a materialized scenario slice.
func SliceSource(scenarios []Scenario) Source { return sliceSource(scenarios) }

type funcSource struct {
	n  int
	fn func(i int) (Scenario, error)
}

func (s funcSource) Len() int                   { return s.n }
func (s funcSource) At(i int) (Scenario, error) { return s.fn(i) }

// FuncSource adapts a generator function: n devices, scenario i built
// on demand by fn (which must be safe for concurrent calls).
func FuncSource(n int, fn func(i int) (Scenario, error)) Source {
	return funcSource{n: n, fn: fn}
}

// Sink consumes per-device rows as the fleet streams. Consume is
// called exactly once per scenario, in scenario order (i strictly
// increasing), never concurrently. A Consume error aborts the run.
type Sink interface {
	Consume(i int, r Result) error
}

// SinkFunc adapts a function to the Sink interface.
type SinkFunc func(i int, r Result) error

// Consume implements Sink.
func (f SinkFunc) Consume(i int, r Result) error { return f(i, r) }

// MultiSink fans rows out to several sinks in argument order.
func MultiSink(sinks ...Sink) Sink {
	return SinkFunc(func(i int, r Result) error {
		for _, s := range sinks {
			if err := s.Consume(i, r); err != nil {
				return err
			}
		}
		return nil
	})
}

// Collector is a Sink that materializes rows — what fleet.Run uses to
// keep its Report.Results contract. Only attach it to fleets you are
// willing to hold in memory.
type Collector struct {
	Rows []Result
}

// Consume implements Sink.
func (c *Collector) Consume(i int, r Result) error {
	c.Rows = append(c.Rows, r)
	return nil
}

// StreamOptions configures RunStream.
type StreamOptions struct {
	// Workers bounds the worker pool (<= 0: GOMAXPROCS).
	Workers int
	// ExactPercentiles is the fleet size up to which wall-time
	// percentiles are exact (<= 0: DefaultExactPercentiles). Larger
	// fleets switch to the histogram estimate.
	ExactPercentiles int
	// Sink, when set, receives every row in scenario order.
	Sink Sink
	// Progress, when set, is called from a ticker goroutine with the
	// number of finished devices (and once more on completion).
	Progress func(done, total int)
	// ProgressEvery is the ticker interval (<= 0: 2s).
	ProgressEvery time.Duration
	// Memo, when set, dedups identical device runs: workers consult
	// the content-addressed memo before simulating and replay cached
	// outcomes (see internal/fleet/memo). Rows and report are
	// bit-identical with or without it; its counters land in
	// Report.Memo. The same memo may be shared across RunStream calls
	// to carry warm state between sweeps.
	Memo *memo.Memo
}

// reorder is the bounded window that restores scenario order for sink
// delivery. A worker whose finished row is too far ahead of the
// oldest undelivered index blocks until the window advances, so
// pending never holds more than window rows — the window is what
// keeps a fleet with one pathologically slow device from buffering
// the entire rest of the fleet behind it.
type reorder struct {
	mu      sync.Mutex
	cond    *sync.Cond
	next    int
	window  int
	pending map[int]Result
	sink    Sink
	err     error
}

func newReorder(sink Sink, workers int) *reorder {
	// A few rows of slack per worker hides delivery jitter without
	// growing the O(workers) memory bound.
	w := &reorder{
		window:  4 * workers,
		pending: make(map[int]Result, 4*workers+1),
		sink:    sink,
	}
	w.cond = sync.NewCond(&w.mu)
	return w
}

// deliver hands row i to the window and flushes every row that became
// in-order, blocking while i is beyond the window. It reports whether
// the run should continue. The worker holding the oldest index never
// blocks (i == next is always inside the window), so the window
// always drains.
func (w *reorder) deliver(i int, r Result) bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	for w.err == nil && i >= w.next+w.window {
		w.cond.Wait()
	}
	if w.err != nil {
		return false
	}
	w.pending[i] = r
	advanced := false
	for {
		row, ok := w.pending[w.next]
		if !ok {
			break
		}
		delete(w.pending, w.next)
		if err := w.sink.Consume(w.next, row); err != nil {
			w.err = fmt.Errorf("fleet: sink at row %d: %w", w.next, err)
			w.cond.Broadcast()
			return false
		}
		w.next++
		advanced = true
	}
	if advanced {
		w.cond.Broadcast()
	}
	return true
}

// RunStream simulates the fleet without materializing it: scenarios
// are generated on demand, rows stream through the optional sink in
// scenario order, and the report is aggregated online — memory is
// O(workers × exact-percentile threshold) worst case (each worker
// shard retains values until it spills), independent of fleet size.
// Scenario-level failures (bad profile, missing model, DNF, a Source
// error for one index) land in that row's Err and do not abort the
// fleet; only a Sink error aborts, returning that error.
//
// The report is bit-identical for any worker count, and — for fleets
// within the exact-percentile threshold — bit-identical to fleet.Run
// over the same scenarios.
func RunStream(src Source, opts StreamOptions) (Report, error) {
	start := time.Now()
	n := src.Len()
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}

	var win *reorder
	if opts.Sink != nil {
		win = newReorder(opts.Sink, workers)
	}

	var done atomic.Int64
	stopProgress := startProgress(&done, n, opts)

	shards := make([]*Agg, workers)
	jobs := make(chan int)
	abort := make(chan struct{})
	var abortOnce sync.Once
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		shards[w] = NewAgg(opts.ExactPercentiles)
		wg.Add(1)
		go func(shard *Agg) {
			defer wg.Done()
			for i := range jobs {
				s, err := src.At(i)
				var r Result
				if err != nil {
					// The scenario never existed, so label its breakdown
					// groups explicitly instead of leaving them blank.
					r = Result{
						Name:      fmt.Sprintf("dev%d", i),
						Engine:    "unknown",
						Profile:   "unknown",
						Predicted: -1,
						Diagnosis: SetupErrorDiagnosis,
						Err:       fmt.Errorf("fleet: scenario %d: %w", i, err),
					}
				} else if opts.Memo != nil {
					r = runMemoized(s, opts.Memo)
				} else {
					r = runOne(s)
				}
				shard.Observe(r)
				done.Add(1)
				if win != nil && !win.deliver(i, r) {
					abortOnce.Do(func() { close(abort) })
					return
				}
			}
		}(shards[w])
	}
dispatch:
	for i := 0; i < n; i++ {
		select {
		case jobs <- i:
		case <-abort:
			break dispatch
		}
	}
	close(jobs)
	wg.Wait()
	stopProgress()

	if win != nil {
		win.mu.Lock()
		err := win.err
		win.mu.Unlock()
		if err != nil {
			return Report{}, err
		}
	}

	agg := NewAgg(opts.ExactPercentiles)
	for _, shard := range shards {
		agg.Merge(shard)
	}
	rep := agg.Report()
	if opts.Memo != nil {
		st := opts.Memo.Stats()
		rep.Memo = &st
	}
	rep.HostSeconds = time.Since(start).Seconds()
	if opts.Progress != nil {
		opts.Progress(int(done.Load()), n)
	}
	return rep, nil
}

// startProgress runs the optional progress ticker; the returned stop
// function is idempotent-enough for the single call RunStream makes.
func startProgress(done *atomic.Int64, total int, opts StreamOptions) func() {
	if opts.Progress == nil {
		return func() {}
	}
	every := opts.ProgressEvery
	if every <= 0 {
		every = 2 * time.Second
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		t := time.NewTicker(every)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				opts.Progress(int(done.Load()), total)
			case <-stop:
				return
			}
		}
	}()
	return func() {
		close(stop)
		wg.Wait()
	}
}
