// Benchmarks regenerating the paper's evaluation artifacts. Each
// table/figure has one benchmark that executes the corresponding
// experiment and reports the headline quantities as custom metrics, so
// `go test -bench=. -benchmem` reproduces the whole evaluation.
//
// The three models are trained once (reduced budget) and shared.
package ehdl_test

import (
	"fmt"
	"io"
	"math/rand"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"ehdl/internal/core"
	"ehdl/internal/device"
	"ehdl/internal/experiments"
	"ehdl/internal/fixed"
	"ehdl/internal/fleet"
	"ehdl/internal/fleet/memo"
	"ehdl/internal/harvest"
	"ehdl/internal/intermittent"
	"ehdl/internal/nn"
	"ehdl/internal/quant"
)

var (
	tasksOnce sync.Once
	tasksVal  []*experiments.Task
	tasksErr  error
)

// benchTasks trains the three models once for all benchmarks.
func benchTasks(b *testing.B) []*experiments.Task {
	b.Helper()
	tasksOnce.Do(func() {
		// Full training budget: the reduced QuickOptions budget leaves
		// MNIST undertrained at some seeds, and the benchmark metrics
		// double as the Table II numbers.
		tasksVal, tasksErr = experiments.PrepareTasks(experiments.FullOptions())
	})
	if tasksErr != nil {
		b.Fatal(tasksErr)
	}
	return tasksVal
}

// BenchmarkTable1BCMCompression regenerates Table I.
func BenchmarkTable1BCMCompression(b *testing.B) {
	var rows []experiments.Table1Row
	for i := 0; i < b.N; i++ {
		rows = experiments.Table1()
	}
	for _, r := range rows {
		b.ReportMetric(r.ReductionPct, fmt.Sprintf("reduction-k%d-%%", r.BlockSize))
	}
}

// BenchmarkTable2ModelAccuracy regenerates Table II: quantized test
// accuracy of the three trained models (inference over the test set
// per iteration).
func BenchmarkTable2ModelAccuracy(b *testing.B) {
	tasks := benchTasks(b)
	t2 := experiments.Table2(tasks)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t2 = experiments.Table2(tasks)
	}
	for name, acc := range t2.Accuracy {
		b.ReportMetric(100*acc[1], name+"-quant-acc-%")
	}
}

// benchContinuous measures one engine on one task under bench power.
func benchContinuous(b *testing.B, taskIdx int, kind core.EngineKind) {
	tasks := benchTasks(b)
	t := tasks[taskIdx]
	input := fixed.FromFloats(t.Set.Test[0].Input)
	b.ResetTimer()
	var last float64
	var lastE float64
	for i := 0; i < b.N; i++ {
		rep, err := core.InferContinuous(kind, t.Result.Model, input)
		if err != nil {
			b.Fatal(err)
		}
		last = rep.Stats.ActiveSeconds * 1e3
		lastE = rep.Stats.EnergymJ()
	}
	b.ReportMetric(last, "device-ms")
	b.ReportMetric(lastE, "device-mJ")
}

// benchIntermittent measures one engine on one task under the paper's
// harvesting setup.
func benchIntermittent(b *testing.B, taskIdx int, kind core.EngineKind) {
	tasks := benchTasks(b)
	t := tasks[taskIdx]
	input := fixed.FromFloats(t.Set.Test[0].Input)
	b.ResetTimer()
	var activeMS, wallMS, boots float64
	completed := false
	for i := 0; i < b.N; i++ {
		rep, err := core.InferIntermittent(kind, t.Result.Model, input, core.PaperHarvestSetup())
		if err != nil {
			b.Fatal(err)
		}
		completed = rep.Intermittent.Completed
		activeMS = rep.Stats.ActiveSeconds * 1e3
		wallMS = rep.Stats.WallSeconds * 1e3
		boots = float64(rep.Intermittent.Boots)
	}
	b.ReportMetric(activeMS, "active-ms")
	b.ReportMetric(wallMS, "wall-ms")
	b.ReportMetric(boots, "boots")
	if completed {
		b.ReportMetric(1, "completed")
	} else {
		b.ReportMetric(0, "completed")
	}
}

// BenchmarkFig7aContinuous regenerates Fig. 7(a): inference time under
// continuous power for every task and runtime.
func BenchmarkFig7aContinuous(b *testing.B) {
	tasks := benchTasks(b)
	for ti := range tasks {
		for _, kind := range core.AllEngines() {
			name := fmt.Sprintf("%s/%s", tasks[ti].Name, kind)
			ti, kind := ti, kind
			b.Run(name, func(b *testing.B) { benchContinuous(b, ti, kind) })
		}
	}
}

// BenchmarkFig7bIntermittent regenerates Fig. 7(b): inference under
// the paper's 100 µF harvesting setup (BASE and plain ACE report
// completed=0 — the paper's "X").
func BenchmarkFig7bIntermittent(b *testing.B) {
	tasks := benchTasks(b)
	for ti := range tasks {
		for _, kind := range core.AllEngines() {
			name := fmt.Sprintf("%s/%s", tasks[ti].Name, kind)
			ti, kind := ti, kind
			b.Run(name, func(b *testing.B) { benchIntermittent(b, ti, kind) })
		}
	}
}

// BenchmarkFig7cEnergy regenerates Fig. 7(c): per-category energy of
// each runtime (continuous power), reported as metrics.
func BenchmarkFig7cEnergy(b *testing.B) {
	tasks := benchTasks(b)
	for ti := range tasks {
		for _, kind := range core.AllEngines() {
			t := tasks[ti]
			input := fixed.FromFloats(t.Set.Test[0].Input)
			kind := kind
			b.Run(fmt.Sprintf("%s/%s", t.Name, kind), func(b *testing.B) {
				var stats device.Stats
				for i := 0; i < b.N; i++ {
					rep, err := core.InferContinuous(kind, t.Result.Model, input)
					if err != nil {
						b.Fatal(err)
					}
					stats = rep.Stats
				}
				b.ReportMetric(stats.EnergymJ(), "total-mJ")
				for c := device.Category(0); c < device.NumCategories; c++ {
					if stats.Energy[c] > 0 {
						b.ReportMetric(stats.Energy[c]*1e-6, c.String()+"-mJ")
					}
				}
			})
		}
	}
}

// BenchmarkFig8FirstFC regenerates Fig. 8: the 256×256 first FC layer
// of MNIST on ACE, dense vs BCM blocks 32/64/128.
func BenchmarkFig8FirstFC(b *testing.B) {
	var rows []experiments.Fig8Row
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = experiments.Fig8(7)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		tag := strings.ReplaceAll(strings.ReplaceAll(r.Variant, " ", "-"), "(", "")
		tag = strings.ReplaceAll(tag, ")", "")
		b.ReportMetric(r.LatencyMS, tag+"-ms")
		b.ReportMetric(r.EnergyMJ, tag+"-mJ")
	}
}

// hostModel quantizes an untrained conv/pool/relu/bcm/dense stack for
// the host-side kernel benchmarks — bit-level behaviour does not
// depend on training, so these run without the training budget.
func hostModel(b *testing.B) (*quant.Model, []fixed.Q15) {
	b.Helper()
	rng := rand.New(rand.NewSource(17))
	arch := &nn.Arch{
		Name: "host-bench", InShape: [3]int{1, 8, 8}, NumClasses: 4,
		Specs: []nn.LayerSpec{
			{Kind: "conv", InC: 1, InH: 8, InW: 8, OutC: 4, KH: 3, KW: 3},
			{Kind: "pool", InC: 4, InH: 6, InW: 6, PoolSize: 2},
			{Kind: "relu", N: 4 * 3 * 3},
			{Kind: "flatten", N: 36},
			{Kind: "bcm", In: 36, Out: 16, K: 8, WeightNorm: true},
			{Kind: "relu", N: 16},
			{Kind: "dense", In: 16, Out: 4},
		},
	}
	net := arch.Build(rng)
	calib := make([][]float64, 6)
	for i := range calib {
		x := make([]float64, arch.InLen())
		for j := range x {
			x[j] = rng.Float64()*2 - 1
		}
		calib[i] = x
	}
	m, err := quant.Quantize(net, arch, calib)
	if err != nil {
		b.Fatal(err)
	}
	in := make([]fixed.Q15, arch.InLen())
	for i := range in {
		in[i] = fixed.FromFloat(rng.Float64()*2 - 1)
	}
	return m, in
}

// BenchmarkExecutorForward measures the host reference executor's
// steady-state inference throughput for both BCM disciplines. With the
// ping-pong scratch buffers and the precomputed BCM weight spectra the
// loop body allocates nothing — -benchmem shows 0 allocs/op.
func BenchmarkExecutorForward(b *testing.B) {
	m, in := hostModel(b)
	for _, d := range []struct {
		name string
		exe  *quant.Executor
	}{
		{"fft", quant.NewExecutor(m)},
		{"time", quant.NewTimeExecutor(m)},
	} {
		b.Run(d.name, func(b *testing.B) {
			d.exe.Forward(in) // warm-up
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				d.exe.Forward(in)
			}
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "inf/s")
		})
	}
}

// BenchmarkExecutorForwardAllocs is the zero-allocation regression
// gate in benchmark form: it reports the exact AllocsPerRun figure
// (must be 0) for the steady-state Forward of both disciplines.
func BenchmarkExecutorForwardAllocs(b *testing.B) {
	m, in := hostModel(b)
	for _, d := range []struct {
		name string
		exe  *quant.Executor
	}{
		{"fft", quant.NewExecutor(m)},
		{"time", quant.NewTimeExecutor(m)},
	} {
		b.Run(d.name, func(b *testing.B) {
			d.exe.Forward(in)
			var allocs float64
			for i := 0; i < b.N; i++ {
				allocs = testing.AllocsPerRun(10, func() { d.exe.Forward(in) })
			}
			b.ReportMetric(allocs, "allocs/forward")
			if allocs != 0 {
				b.Fatalf("steady-state Forward allocates %v times per run, want 0", allocs)
			}
		})
	}
}

// BenchmarkHostThroughput measures full device simulations per second
// of host wall time for every engine — the simulator-speed headline
// the BENCH trajectory tracks (device-side numbers are unchanged by
// host optimizations; this is how fast we can produce them).
func BenchmarkHostThroughput(b *testing.B) {
	m, in := hostModel(b)
	for _, kind := range core.AllEngines() {
		b.Run(string(kind), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := core.InferContinuous(kind, m, in); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "inf/s")
		})
	}
}

// BenchmarkRecharge measures one full VOff→VOn recharge under weak
// ambient sources (20–500 µW mean, sub-second to ~19 s of off-time),
// analytic engine vs the retained Euler oracle. The closed-form path
// costs O(profile segments) with whole periods skipped in one step;
// the oracle pays one loop iteration per 100 µs of simulated off-time
// — the wall-clock headroom that makes fleet sweeps and multi-hour
// profiles tractable.
func BenchmarkRecharge(b *testing.B) {
	profiles := []struct {
		name string
		p    harvest.Profile
	}{
		{"const", harvest.ConstantProfile{Watts: 5e-4}},
		{"square", harvest.SquareProfile{PeakWatts: 2e-3, Period: 2, Duty: 0.01}},
		{"sine", harvest.SineProfile{PeakWatts: 2e-4, Period: 2}},
	}
	recharge := func(b *testing.B, p harvest.Profile, euler bool) {
		b.Helper()
		var off float64
		for i := 0; i < b.N; i++ {
			c, err := harvest.NewCapacitor(harvest.PaperConfig(), p)
			if err != nil {
				b.Fatal(err)
			}
			c.Draw(1e9, 1e-3) // 1 J: guaranteed brown-out
			var ok bool
			if euler {
				off, ok = c.RechargeEuler(1e-4, 3600)
			} else {
				off, ok = c.Recharge()
			}
			if !ok {
				b.Fatal("source reported dead")
			}
		}
		b.ReportMetric(off, "sim-off-s")
	}
	for _, pr := range profiles {
		pr := pr
		b.Run("analytic/"+pr.name, func(b *testing.B) { recharge(b, pr.p, false) })
		b.Run("euler/"+pr.name, func(b *testing.B) { recharge(b, pr.p, true) })
	}
}

// ffChunkProgram is a Skippable checkpointing workload for the
// fast-forward benchmark: fixed-cost chunks committed through an
// NVWord, with the steady-state homogeneity the runner's analytic
// fast-forward proves and exploits.
type ffChunkProgram struct {
	pos         device.NVWord
	totalChunks uint64
	chunkOps    int
}

func (p *ffChunkProgram) Boot(d *device.Device) error {
	for {
		i := p.pos.Read(d, device.CatRestore)
		if i >= p.totalChunks {
			return nil
		}
		d.CPUOps(p.chunkOps)
		p.pos.Write(d, device.CatCheckpoint, i+1)
	}
}

func (p *ffChunkProgram) Progress() uint64       { return p.pos.Peek() }
func (p *ffChunkProgram) ProgressTarget() uint64 { return p.totalChunks }
func (p *ffChunkProgram) SkipBoots(k, delta uint64) {
	p.pos.Poke(p.pos.Peek() + k*delta)
}

// BenchmarkIntermittentFastForward measures the runner's analytic
// fast-forward on a ~2800-boot slow-harvest run (0.5 mW constant
// source, paper capacitor): the fast-forward sub-benchmark proves the
// supply fixed point after a couple of boots and jumps the rest in
// closed form, the boot-by-boot sub-benchmark simulates every boot
// with the identical result (pinned by TestFastForwardBitIdentical).
// The ns/op ratio between the two is the headline — ≥100× on this
// shape — and the boots/ff-boots metrics show what was skipped.
func BenchmarkIntermittentFastForward(b *testing.B) {
	run := func(b *testing.B, noFF bool) {
		b.Helper()
		var res intermittent.Result
		for i := 0; i < b.N; i++ {
			c, err := harvest.NewCapacitor(harvest.PaperConfig(), harvest.ConstantProfile{Watts: 5e-4})
			if err != nil {
				b.Fatal(err)
			}
			d := device.New(device.DefaultCosts(), c)
			p := &ffChunkProgram{totalChunks: 600000, chunkOps: 1000}
			res = (&intermittent.Runner{MaxBoots: 100000, NoFastForward: noFF}).Run(d, p)
			if !res.Completed {
				b.Fatalf("did not complete: %+v", res)
			}
		}
		b.ReportMetric(float64(res.Boots), "boots")
		b.ReportMetric(float64(res.Diagnosis.FastForwarded), "ff-boots")
	}
	b.Run("fast-forward", func(b *testing.B) { run(b, false) })
	b.Run("boot-by-boot", func(b *testing.B) { run(b, true) })
}

// BenchmarkFleet measures the fleet layer: a 32-device deployment of
// the host model across all five runtimes and jittered square sources,
// reported as simulated devices per second of host time.
func BenchmarkFleet(b *testing.B) {
	m, in := hostModel(b)
	kinds := core.AllEngines()
	scenarios := make([]fleet.Scenario, 32)
	for i := range scenarios {
		setup := core.PaperHarvestSetup()
		// A small capacitor forces several power cycles per inference.
		setup.Config.CapacitanceF = 10e-6
		setup.Profile = harvest.SquareProfile{
			PeakWatts: 4e-3 + 1e-4*float64(i%10),
			Period:    0.1,
			Duty:      0.5,
		}
		scenarios[i] = fleet.Scenario{
			Name:   fmt.Sprintf("dev%02d", i),
			Engine: kinds[i%len(kinds)],
			Model:  m,
			Input:  in,
			Setup:  setup,
		}
	}
	var rep fleet.Report
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep = fleet.Run(scenarios, 0)
	}
	for _, r := range rep.Results {
		if r.Err != nil && !r.Completed && r.Boots == 0 {
			b.Fatalf("%s: %v", r.Name, r.Err)
		}
	}
	b.ReportMetric(float64(len(scenarios))*float64(b.N)/b.Elapsed().Seconds(), "devices/s")
	b.ReportMetric(100*rep.CompletionRate, "completion-%")
	b.ReportMetric(float64(rep.TotalBoots), "boots")
}

// BenchmarkFleetStream measures the streaming fleet pipeline end to
// end: scenarios built lazily from a source, simulated over the
// worker pool, aggregated online (small exact-percentile threshold so
// the histogram path is exercised), and every row delivered in order
// to an NDJSON sink. Reported as simulated devices per second of host
// time; the trajectory headline for fleet-scale runs.
func BenchmarkFleetStream(b *testing.B) {
	m, in := hostModel(b)
	kinds := core.AllEngines()
	const devices = 512
	src := fleet.FuncSource(devices, func(i int) (fleet.Scenario, error) {
		setup := core.PaperHarvestSetup()
		setup.Config.CapacitanceF = 10e-6
		setup.Profile = harvest.SquareProfile{
			PeakWatts: 4e-3 + 1e-4*float64(i%10),
			Period:    0.1,
			Duty:      0.5,
		}
		return fleet.Scenario{
			Name:   fmt.Sprintf("dev%04d", i),
			Engine: kinds[i%len(kinds)],
			Model:  m,
			Input:  in,
			Setup:  setup,
		}, nil
	})
	var rep fleet.Report
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		rep, err = fleet.RunStream(src, fleet.StreamOptions{
			ExactPercentiles: 64,
			Sink:             fleet.NewNDJSONSink(io.Discard),
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	if rep.Devices != devices || rep.PercentilesExact {
		b.Fatalf("unexpected report: %d devices, exact=%v", rep.Devices, rep.PercentilesExact)
	}
	b.ReportMetric(float64(devices)*float64(b.N)/b.Elapsed().Seconds(), "devices/s")
	b.ReportMetric(100*rep.CompletionRate, "completion-%")
}

// BenchmarkFleetStreamCheckpoint isolates the cost of durable
// checkpointing. Every iteration runs the *same* 8192-device fleet
// into the *same* real NDJSON file sink twice — once without and once
// with checkpointing at a quarter-sweep interval (three mid-sweep
// checkpoints plus the final one; per device that is still ~50×
// denser than DefaultCheckpointEvery) — and the overhead-% metric is
// the paired time delta. Interleaving the two configurations inside
// each iteration cancels the minutes-scale host noise that
// back-to-back sub-benchmarks would each absorb differently; the PR 7
// acceptance gate holds overhead-% under 5. Periodic checkpoint
// writes ride an async writer that overlaps fsync latency with
// simulation, so only the final synchronous checkpoint sits on the
// critical path — a per-sweep constant, which is why the fleet here
// is big enough (~1.3 s of simulation per sweep) to amortize it the
// way a real sweep would; CI runs this benchmark in its own short
// pass (10 iterations) for the same reason.
func BenchmarkFleetStreamCheckpoint(b *testing.B) {
	m, in := hostModel(b)
	kinds := core.AllEngines()
	const devices = 8192
	src := fleet.FuncSource(devices, func(i int) (fleet.Scenario, error) {
		setup := core.PaperHarvestSetup()
		setup.Config.CapacitanceF = 10e-6
		setup.Profile = harvest.SquareProfile{
			PeakWatts: 4e-3 + 1e-4*float64(i%10),
			Period:    0.1,
			Duty:      0.5,
		}
		return fleet.Scenario{
			Name:   fmt.Sprintf("dev%04d", i),
			Engine: kinds[i%len(kinds)],
			Model:  m,
			Input:  in,
			Setup:  setup,
		}, nil
	})
	dir := b.TempDir()
	rowsPath := filepath.Join(dir, "rows.ndjson")
	spec := &fleet.CheckpointSpec{
		Path:        filepath.Join(dir, "ck.ehdl"),
		Every:       devices / 4,
		Fingerprint: "bench",
	}
	sweep := func(spec *fleet.CheckpointSpec) fleet.Report {
		sink, err := fleet.NewNDJSONFile(rowsPath, 0)
		if err != nil {
			b.Fatal(err)
		}
		rep, err := fleet.RunStream(src, fleet.StreamOptions{
			ExactPercentiles: 64,
			Sink:             sink,
			Checkpoint:       spec,
		})
		if err != nil {
			b.Fatal(err)
		}
		if err := sink.Close(); err != nil {
			b.Fatal(err)
		}
		return rep
	}
	var tOff, tOn time.Duration
	var rep fleet.Report
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t0 := time.Now()
		sweep(nil)
		tOff += time.Since(t0)
		t1 := time.Now()
		rep = sweep(spec)
		tOn += time.Since(t1)
	}
	if rep.Devices != devices || rep.PercentilesExact {
		b.Fatalf("unexpected report: %d devices, exact=%v", rep.Devices, rep.PercentilesExact)
	}
	total := float64(devices) * float64(b.N)
	b.ReportMetric(total/tOff.Seconds(), "base-devices/s")
	b.ReportMetric(total/tOn.Seconds(), "ckpt-devices/s")
	b.ReportMetric(100*(tOn.Seconds()-tOff.Seconds())/tOff.Seconds(), "overhead-%")
}

// BenchmarkFleetMemo measures the fleet inference memo (PR 6): a
// 512-device fleet whose jitter is quantized into 8 power classes per
// engine, so 512 devices collapse into 40 (engine × class) simulation
// equivalence classes. The memoized run should therefore approach a
// ~12.8× devices/s speedup over the unmemoized baseline — the
// ISSUE's >= 10x acceptance gate, measured cold (a fresh memo every
// iteration, fill cost included).
func BenchmarkFleetMemo(b *testing.B) {
	m, in := hostModel(b)
	kinds := core.AllEngines()
	const devices = 512
	src := fleet.FuncSource(devices, func(i int) (fleet.Scenario, error) {
		setup := core.PaperHarvestSetup()
		setup.Config.CapacitanceF = 10e-6
		setup.Profile = harvest.SquareProfile{
			// The quantized-jitter shape: 8 discrete power classes, as
			// a scenario file with jitter_steps 8 would draw.
			PeakWatts: 4e-3 + 1e-4*float64(i%8),
			Period:    0.1,
			Duty:      0.5,
		}
		return fleet.Scenario{
			Name:   fmt.Sprintf("dev%04d", i),
			Engine: kinds[i%len(kinds)],
			Model:  m,
			Input:  in,
			Setup:  setup,
		}, nil
	})
	run := func(b *testing.B, mm func() *memo.Memo) fleet.Report {
		var rep fleet.Report
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			var opts fleet.StreamOptions
			if mm != nil {
				opts.Memo = mm()
			}
			var err error
			rep, err = fleet.RunStream(src, opts)
			if err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(devices)*float64(b.N)/b.Elapsed().Seconds(), "devices/s")
		b.ReportMetric(100*rep.CompletionRate, "completion-%")
		return rep
	}
	b.Run("memo=off", func(b *testing.B) { run(b, nil) })
	b.Run("memo=on", func(b *testing.B) {
		rep := run(b, func() *memo.Memo { return memo.New(0) })
		if rep.Memo == nil {
			b.Fatal("memoized run reported no stats")
		}
		b.ReportMetric(100*float64(rep.Memo.Hits())/float64(devices), "hit-%")
	})
}

// BenchmarkCheckpointOverhead regenerates §IV-A.5: FLEX's
// checkpoint+restore energy share under intermittent power.
func BenchmarkCheckpointOverhead(b *testing.B) {
	tasks := benchTasks(b)
	for ti := range tasks {
		t := tasks[ti]
		input := fixed.FromFloats(t.Set.Test[0].Input)
		b.Run(t.Name, func(b *testing.B) {
			var overheadPct float64
			for i := 0; i < b.N; i++ {
				rep, err := core.InferIntermittent(core.EngineACEFLEX, t.Result.Model, input, core.PaperHarvestSetup())
				if err != nil {
					b.Fatal(err)
				}
				if !rep.Intermittent.Completed {
					b.Fatal("ACE+FLEX did not complete")
				}
				ck := rep.Stats.Energy[device.CatCheckpoint] + rep.Stats.Energy[device.CatRestore]
				overheadPct = 100 * ck / rep.Stats.TotalEnergynJ
			}
			b.ReportMetric(overheadPct, "ckpt-overhead-%")
		})
	}
}
