package ehdl_test

// Runnable godoc examples for the ehdl facade. Everything here is
// deterministic — the dataset generators, training and the device
// simulation are all seeded — so the Output blocks are exact and the
// examples double as tests.

import (
	"fmt"
	"log"
	"sync"

	"ehdl"
)

var (
	exampleOnce sync.Once
	exampleM    *ehdl.Model
	exampleSet  *ehdl.Set
)

// exampleModel trains one small HAR model shared by the examples
// (reduced budget: the examples demonstrate the API, not Table II).
func exampleModel() (*ehdl.Model, *ehdl.Set) {
	exampleOnce.Do(func() {
		set := ehdl.HAR(60, 12, 1)
		opts := ehdl.DefaultTrainOptions()
		opts.Train.Epochs = 1
		opts.ADMM.Rounds = 1
		opts.ADMM.Train.Epochs = 1
		res, err := ehdl.Train(ehdl.HARArch(), set, opts)
		if err != nil {
			log.Fatal(err)
		}
		exampleM, exampleSet = res.Model, set
	})
	return exampleM, exampleSet
}

// ExampleInfer runs one measured inference on continuous (bench)
// power and reads the prediction back.
func ExampleInfer() {
	model, set := exampleModel()
	rep, err := ehdl.Infer(ehdl.ACEFLEX, model, set.Test[0].Input)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("predicted %s (true %s)\n",
		set.ClassNames[rep.Predicted], set.ClassNames[set.Test[0].Label])
	// Output: predicted sitting (true sitting)
}

// ExampleRunFleet simulates a small deployment: four devices under
// the paper's harvesting setup, swept concurrently into one report.
func ExampleRunFleet() {
	model, set := exampleModel()
	var scenarios []ehdl.FleetScenario
	for i := 0; i < 4; i++ {
		scenarios = append(scenarios, ehdl.NewFleetScenario(
			fmt.Sprintf("node%d", i), ehdl.ACEFLEX, model,
			set.Test[i].Input, ehdl.PaperHarvest()))
	}
	rep := ehdl.RunFleet(scenarios, 2)
	fmt.Printf("devices: %d, completed: %d\n", rep.Devices, rep.Completed)
	for _, r := range rep.Results {
		fmt.Printf("%s: %s\n", r.Name, set.ClassNames[r.Predicted])
	}
	// Output:
	// devices: 4, completed: 4
	// node0: sitting
	// node1: sitting
	// node2: upstairs
	// node3: laying
}

// ExampleStreamFleet streams a fleet that is never materialized: the
// source builds each scenario on demand and the report is aggregated
// online, so the same code scales to millions of devices.
func ExampleStreamFleet() {
	model, set := exampleModel()
	src := ehdl.FleetSourceFunc(100, func(i int) (ehdl.FleetScenario, error) {
		return ehdl.NewFleetScenario(
			fmt.Sprintf("node%d", i), ehdl.ACEFLEX, model,
			set.Test[i%len(set.Test)].Input, ehdl.PaperHarvest()), nil
	})
	rep, err := ehdl.StreamFleet(src, ehdl.FleetStreamOptions{Workers: 4})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("devices: %d, completed: %d, exact percentiles: %v\n",
		rep.Devices, rep.Completed, rep.PercentilesExact)
	// Output: devices: 100, completed: 100, exact percentiles: true
}
