module ehdl

go 1.24
